//! The renderers: sequential, threaded (parallel-for and work-stealing
//! pool), distributed, and GPU-simulated. All produce bit-identical
//! images for the same scene — the shading math is pure per-pixel.

use crate::math::{Ray, Vec3};
use crate::scene::{Camera, Scene};
use pdc_core::trace::TraceSession;
use pdc_gpu::KernelStats;
use pdc_mpi::world::{Rank, TrafficStats, World};
use pdc_threads::parfor::{parallel_for, Schedule};
use pdc_threads::pool::{pool_map, WorkStealingPool};
use std::sync::Arc;

/// An RGB image with 8-bit channels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Row-major RGB triples.
    pub pixels: Vec<[u8; 3]>,
}

impl Image {
    fn new(width: usize, height: usize) -> Self {
        Image {
            width,
            height,
            pixels: vec![[0; 3]; width * height],
        }
    }

    /// Encode as a binary PPM (P6) byte vector.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        for p in &self.pixels {
            out.extend_from_slice(p);
        }
        out
    }

    /// Mean luminance in `[0, 255]` (for sanity checks).
    pub fn mean_luminance(&self) -> f64 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .pixels
            .iter()
            .map(|[r, g, b]| {
                0.2126 * f64::from(*r) + 0.7152 * f64::from(*g) + 0.0722 * f64::from(*b)
            })
            .sum();
        total / self.pixels.len() as f64
    }
}

fn to_rgb8(c: Vec3) -> [u8; 3] {
    let c = c.saturate();
    // Gamma 2.0 for a less murky image.
    [
        (c.x.sqrt() * 255.0 + 0.5) as u8,
        (c.y.sqrt() * 255.0 + 0.5) as u8,
        (c.z.sqrt() * 255.0 + 0.5) as u8,
    ]
}

/// Shade one ray: Phong lighting + hard shadows + mirror recursion.
pub fn trace(scene: &Scene, ray: &Ray, depth: u32) -> Vec3 {
    let Some(hit) = scene.hit(ray) else {
        return scene.background;
    };
    let mat = hit.material;
    let mut color = scene.ambient.hadamard(mat.diffuse);
    for light in &scene.lights {
        if scene.in_shadow(hit.point, light.position) {
            continue;
        }
        let l = (light.position - hit.point).normalized();
        let ndotl = hit.normal.dot(l).max(0.0);
        color = color + light.intensity.hadamard(mat.diffuse) * ndotl;
        if mat.specular > 0.0 {
            let r = (-l).reflect(hit.normal);
            let spec = r.dot(ray.dir.normalized()).max(0.0).powf(mat.shininess);
            color = color + light.intensity * (mat.specular * spec);
        }
    }
    if mat.reflectivity > 0.0 && depth > 0 {
        let rdir = ray.dir.reflect(hit.normal).normalized();
        let rray = Ray {
            origin: hit.point + rdir * 1e-6,
            dir: rdir,
        };
        let reflected = trace(scene, &rray, depth - 1);
        color = color * (1.0 - mat.reflectivity) + reflected * mat.reflectivity;
    }
    color
}

/// Render one row of pixels.
fn render_row(
    scene: &Scene,
    cam: &Camera,
    w: usize,
    h: usize,
    y: usize,
    depth: u32,
) -> Vec<[u8; 3]> {
    let row = (0..w)
        .map(|x| {
            let ray = cam.primary_ray(x, y, w, h);
            to_rgb8(trace(scene, &ray, depth))
        })
        .collect();
    // One unit-cost operation per pixel, attributed to whichever
    // strand rendered the row (sequential caller, pool worker, rank
    // thread) — the span pass's work metric. No-op untraced.
    pdc_core::trace::record_steps(w as u64);
    row
}

/// Sequential renderer — the baseline.
pub fn render_sequential(scene: &Scene, cam: &Camera, w: usize, h: usize, depth: u32) -> Image {
    let mut img = Image::new(w, h);
    for y in 0..h {
        let row = render_row(scene, cam, w, h, y, depth);
        img.pixels[y * w..(y + 1) * w].copy_from_slice(&row);
    }
    img
}

/// Threaded renderer: rows are independent; the schedule matters because
/// rows crossing the spheres cost more than sky rows (irregular work).
pub fn render_threaded(
    scene: &Scene,
    cam: &Camera,
    w: usize,
    h: usize,
    depth: u32,
    workers: usize,
    schedule: Schedule,
) -> Image {
    let rows: Vec<std::sync::Mutex<Vec<[u8; 3]>>> =
        (0..h).map(|_| std::sync::Mutex::new(Vec::new())).collect();
    parallel_for(0..h, workers, schedule, |y| {
        *rows[y].lock().unwrap() = render_row(scene, cam, w, h, y, depth);
    });
    let mut img = Image::new(w, h);
    for (y, row) in rows.into_iter().enumerate() {
        img.pixels[y * w..(y + 1) * w].copy_from_slice(&row.into_inner().unwrap());
    }
    img
}

/// Work-stealing renderer: one pool task per row, results reassembled
/// in row order by [`pool_map`]. Unlike [`render_threaded`]'s fixed
/// schedules, the pool balances the irregular per-row cost by stealing.
/// Bit-identical to [`render_sequential`].
pub fn render_pool(
    scene: &Scene,
    cam: &Camera,
    w: usize,
    h: usize,
    depth: u32,
    pool: &WorkStealingPool,
) -> Image {
    // Pool tasks are 'static: ship an owned copy of the scene.
    let ctx = Arc::new((scene.clone(), *cam));
    let rows = pool_map(pool, (0..h).collect(), move |y| {
        let (scene, cam) = &*ctx;
        render_row(scene, cam, w, h, y, depth)
    });
    let mut img = Image::new(w, h);
    for (y, row) in rows.into_iter().enumerate() {
        img.pixels[y * w..(y + 1) * w].copy_from_slice(&row);
    }
    img
}

/// GPU-simulated renderer: one simulated GPU thread per pixel, the RGB
/// triple packed into the low 24 bits of the global-memory word. The
/// shading runs the same [`trace`] as every other backend, so the image
/// is bit-identical; the simulator contributes the cost model (and,
/// when `session` is given, `gpu.*` counters plus a kernel event).
pub fn render_gpu(
    scene: &Scene,
    cam: &Camera,
    w: usize,
    h: usize,
    depth: u32,
    session: Option<&TraceSession>,
) -> (Image, KernelStats) {
    let (words, stats) = pdc_gpu::map_kernel(w * h, 64, session, &|i| {
        let (x, y) = (i % w, i / w);
        let ray = cam.primary_ray(x, y, w, h);
        let [r, g, b] = to_rgb8(trace(scene, &ray, depth));
        (i64::from(r) << 16) | (i64::from(g) << 8) | i64::from(b)
    });
    let mut img = Image::new(w, h);
    for (px, &word) in img.pixels.iter_mut().zip(&words) {
        *px = [(word >> 16) as u8, (word >> 8) as u8, word as u8];
    }
    (img, stats)
}

/// Distributed renderer: row bands per rank; rank 0 gathers the bands.
/// Returns the image (at rank 0's copy) plus message traffic.
pub fn render_distributed(
    scene: &Scene,
    cam: &Camera,
    w: usize,
    h: usize,
    depth: u32,
    ranks: usize,
) -> (Image, TrafficStats) {
    assert!(ranks > 0);
    let p = ranks.min(h);
    // Flattened rows as Vec<u8> messages: (row_index, rgb bytes).
    let (results, traffic) = World::run(p, |rank: &mut Rank<(u64, Vec<u8>)>| {
        let me = rank.id();
        // Cyclic row assignment balances the irregular work.
        let mine: Vec<usize> = (me..h).step_by(p).collect();
        let mut rendered: Vec<(usize, Vec<u8>)> = Vec::with_capacity(mine.len());
        for &y in &mine {
            let row = render_row(scene, cam, w, h, y, depth);
            rendered.push((y, row.iter().flatten().copied().collect()));
        }
        if me == 0 {
            // Collect everyone else's rows.
            let mut all = rendered;
            let expect: usize = h - all.len();
            for _ in 0..expect {
                let (_, (y, bytes)) = rank.recv_any(1);
                all.push((y as usize, bytes));
            }
            Some(all)
        } else {
            for (y, bytes) in rendered {
                rank.send(0, 1, (y as u64, bytes));
            }
            None
        }
    });
    let mut img = Image::new(w, h);
    let all = results
        .into_iter()
        .flatten()
        .next()
        .expect("rank 0 returns rows");
    for (y, bytes) in all {
        for (x, rgb) in bytes.chunks_exact(3).enumerate() {
            img.pixels[y * w + x] = [rgb[0], rgb[1], rgb[2]];
        }
    }
    (img, traffic)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{Camera, Scene};

    const W: usize = 80;
    const H: usize = 60;

    #[test]
    fn image_has_content_and_structure() {
        let img = render_sequential(&Scene::demo(), &Camera::demo(), W, H, 2);
        assert_eq!(img.pixels.len(), W * H);
        let lum = img.mean_luminance();
        assert!(lum > 20.0 && lum < 235.0, "luminance {lum} looks wrong");
        // The image is not a single flat color.
        let first = img.pixels[0];
        assert!(img.pixels.iter().any(|&p| p != first));
    }

    #[test]
    fn threaded_matches_sequential_all_schedules() {
        let scene = Scene::demo();
        let cam = Camera::demo();
        let seq = render_sequential(&scene, &cam, W, H, 2);
        for schedule in [
            Schedule::Static,
            Schedule::Dynamic { chunk: 2 },
            Schedule::Guided { min_chunk: 1 },
        ] {
            for workers in [1usize, 3] {
                let par = render_threaded(&scene, &cam, W, H, 2, workers, schedule);
                assert_eq!(par, seq, "w={workers} {schedule:?}");
            }
        }
    }

    #[test]
    fn distributed_matches_sequential() {
        let scene = Scene::demo();
        let cam = Camera::demo();
        let seq = render_sequential(&scene, &cam, W, H, 2);
        for ranks in [1usize, 2, 4] {
            let (dist, traffic) = render_distributed(&scene, &cam, W, H, 2, ranks);
            assert_eq!(dist, seq, "ranks={ranks}");
            if ranks > 1 {
                // Every non-root row travels exactly once.
                let foreign_rows = (0..H).filter(|y| y % ranks != 0).count() as u64;
                assert_eq!(traffic.messages, foreign_rows);
            }
        }
    }

    #[test]
    fn every_backend_produces_bit_identical_ppm_bytes() {
        // The seam's determinism contract, stated in bytes: sequential,
        // parallel-for, pool, and GPU-sim renders of the same seeded
        // scene must encode to the *same* PPM stream.
        let scene = Scene::seeded(99);
        let cam = Camera::demo();
        let seq = render_sequential(&scene, &cam, W, H, 2).to_ppm();
        let threaded =
            render_threaded(&scene, &cam, W, H, 2, 3, Schedule::Dynamic { chunk: 2 }).to_ppm();
        assert_eq!(threaded, seq, "render_threaded diverged");
        let pool = WorkStealingPool::new(4);
        let pooled = render_pool(&scene, &cam, W, H, 2, &pool).to_ppm();
        assert_eq!(pooled, seq, "render_pool diverged");
        let (gpu, _) = render_gpu(&scene, &cam, W, H, 2, None);
        assert_eq!(gpu.to_ppm(), seq, "render_gpu diverged");
    }

    #[test]
    fn gpu_render_traced_publishes_kernel_counters() {
        let session = TraceSession::new();
        let scene = Scene::demo();
        let (img, stats) = render_gpu(&scene, &Camera::demo(), 32, 24, 1, Some(&session));
        assert_eq!(img.pixels.len(), 32 * 24);
        assert!(stats.executed_ops > 0);
        assert_eq!(session.snapshot().get("gpu.launches"), 1);
    }

    #[test]
    fn reflections_change_the_image() {
        let scene = Scene::demo();
        let cam = Camera::demo();
        let with = render_sequential(&scene, &cam, W, H, 3);
        let without = render_sequential(&scene, &cam, W, H, 0);
        assert_ne!(with, without, "depth-0 kills mirror highlights");
    }

    #[test]
    fn ppm_header_and_size() {
        let img = render_sequential(&Scene::demo(), &Camera::demo(), 16, 8, 1);
        let ppm = img.to_ppm();
        assert!(ppm.starts_with(b"P6\n16 8\n255\n"));
        assert_eq!(ppm.len(), 12 + 16 * 8 * 3);
    }

    #[test]
    fn shadowed_floor_is_darker_than_lit_floor() {
        let scene = Scene::demo();
        let cam = Camera::demo();
        let img = render_sequential(&scene, &cam, 200, 150, 1);
        // Rough check: the darkest floor-region pixel is much darker
        // than the brightest, thanks to shadows + checkers.
        let bottom: Vec<&[u8; 3]> = img.pixels[200 * 120..].iter().collect();
        let lum = |p: &[u8; 3]| p.iter().map(|&c| c as u32).sum::<u32>();
        let max = bottom.iter().map(|p| lum(p)).max().unwrap();
        let min = bottom.iter().map(|p| lum(p)).min().unwrap();
        assert!(max > min * 2, "floor contrast: {min}..{max}");
    }
}
