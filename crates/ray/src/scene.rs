//! Scene description: geometry, materials, lights, camera.

use crate::math::{Ray, Vec3};

/// Surface material.
#[derive(Debug, Clone, Copy)]
pub struct Material {
    /// Diffuse (Lambertian) color.
    pub diffuse: Vec3,
    /// Specular highlight strength.
    pub specular: f64,
    /// Phong exponent.
    pub shininess: f64,
    /// Mirror reflectivity in `[0, 1]`.
    pub reflectivity: f64,
}

impl Material {
    /// A matte material of the given color.
    pub fn matte(color: Vec3) -> Self {
        Material {
            diffuse: color,
            specular: 0.0,
            shininess: 1.0,
            reflectivity: 0.0,
        }
    }

    /// A shiny material.
    pub fn shiny(color: Vec3, reflectivity: f64) -> Self {
        Material {
            diffuse: color,
            specular: 0.6,
            shininess: 64.0,
            reflectivity,
        }
    }
}

/// A sphere.
#[derive(Debug, Clone, Copy)]
pub struct Sphere {
    /// Center.
    pub center: Vec3,
    /// Radius.
    pub radius: f64,
    /// Surface material.
    pub material: Material,
}

/// An infinite horizontal plane `y = height` with a checker pattern.
#[derive(Debug, Clone, Copy)]
pub struct CheckerPlane {
    /// Plane height.
    pub height: f64,
    /// Checker cell size.
    pub cell: f64,
    /// Even-cell material.
    pub a: Material,
    /// Odd-cell material.
    pub b: Material,
}

/// A point light.
#[derive(Debug, Clone, Copy)]
pub struct Light {
    /// Position.
    pub position: Vec3,
    /// Intensity (color).
    pub intensity: Vec3,
}

/// Hit record.
#[derive(Debug, Clone, Copy)]
pub struct Hit {
    /// Ray parameter at the hit.
    pub t: f64,
    /// Hit point.
    pub point: Vec3,
    /// Surface normal (unit, toward the ray origin side).
    pub normal: Vec3,
    /// Material at the hit.
    pub material: Material,
}

const EPS: f64 = 1e-9;

fn hit_sphere(s: &Sphere, ray: &Ray, t_max: f64) -> Option<Hit> {
    let oc = ray.origin - s.center;
    let a = ray.dir.dot(ray.dir);
    let half_b = oc.dot(ray.dir);
    let c = oc.dot(oc) - s.radius * s.radius;
    let disc = half_b * half_b - a * c;
    if disc < 0.0 {
        return None;
    }
    let sqrt_d = disc.sqrt();
    let mut t = (-half_b - sqrt_d) / a;
    if t < EPS {
        t = (-half_b + sqrt_d) / a;
    }
    if t < EPS || t >= t_max {
        return None;
    }
    let point = ray.at(t);
    let mut normal = (point - s.center) / s.radius;
    if normal.dot(ray.dir) > 0.0 {
        normal = -normal;
    }
    Some(Hit {
        t,
        point,
        normal,
        material: s.material,
    })
}

fn hit_plane(p: &CheckerPlane, ray: &Ray, t_max: f64) -> Option<Hit> {
    if ray.dir.y.abs() < EPS {
        return None;
    }
    let t = (p.height - ray.origin.y) / ray.dir.y;
    if t < EPS || t >= t_max {
        return None;
    }
    let point = ray.at(t);
    let cx = (point.x / p.cell).floor() as i64;
    let cz = (point.z / p.cell).floor() as i64;
    let material = if (cx + cz).rem_euclid(2) == 0 {
        p.a
    } else {
        p.b
    };
    let normal = if ray.origin.y > p.height {
        Vec3::new(0.0, 1.0, 0.0)
    } else {
        Vec3::new(0.0, -1.0, 0.0)
    };
    Some(Hit {
        t,
        point,
        normal,
        material,
    })
}

/// The scene: geometry + lights + background.
#[derive(Debug, Clone)]
pub struct Scene {
    /// Spheres.
    pub spheres: Vec<Sphere>,
    /// Optional ground plane.
    pub plane: Option<CheckerPlane>,
    /// Point lights.
    pub lights: Vec<Light>,
    /// Background color.
    pub background: Vec3,
    /// Ambient term.
    pub ambient: Vec3,
}

impl Scene {
    /// Closest hit along `ray`, if any.
    pub fn hit(&self, ray: &Ray) -> Option<Hit> {
        let mut best: Option<Hit> = None;
        let mut t_max = f64::INFINITY;
        for s in &self.spheres {
            if let Some(h) = hit_sphere(s, ray, t_max) {
                t_max = h.t;
                best = Some(h);
            }
        }
        if let Some(p) = &self.plane {
            if let Some(h) = hit_plane(p, ray, t_max) {
                best = Some(h);
            }
        }
        best
    }

    /// Is the segment from `point` toward `light_pos` blocked?
    pub fn in_shadow(&self, point: Vec3, light_pos: Vec3) -> bool {
        let dir = light_pos - point;
        let dist = dir.length();
        let ray = Ray {
            origin: point + dir / dist * 1e-6,
            dir: dir / dist,
        };
        for s in &self.spheres {
            if hit_sphere(s, &ray, dist).is_some() {
                return true;
            }
        }
        // The ground plane cannot shadow points above it from lights
        // above it; skip it for simplicity (documented approximation).
        false
    }

    /// The demo scene used by the examples and tests: three spheres on a
    /// checkered floor, two lights.
    pub fn demo() -> Scene {
        Scene {
            spheres: vec![
                Sphere {
                    center: Vec3::new(0.0, 0.0, -3.0),
                    radius: 1.0,
                    material: Material::shiny(Vec3::new(0.9, 0.2, 0.2), 0.35),
                },
                Sphere {
                    center: Vec3::new(-1.8, -0.4, -2.4),
                    radius: 0.6,
                    material: Material::matte(Vec3::new(0.2, 0.5, 0.9)),
                },
                Sphere {
                    center: Vec3::new(1.7, -0.55, -2.2),
                    radius: 0.45,
                    material: Material::shiny(Vec3::new(0.2, 0.8, 0.3), 0.6),
                },
            ],
            plane: Some(CheckerPlane {
                height: -1.0,
                cell: 1.0,
                a: Material::matte(Vec3::new(0.85, 0.85, 0.85)),
                b: Material::matte(Vec3::new(0.15, 0.15, 0.15)),
            }),
            lights: vec![
                Light {
                    position: Vec3::new(5.0, 6.0, 0.0),
                    intensity: Vec3::new(0.9, 0.9, 0.9),
                },
                Light {
                    position: Vec3::new(-4.0, 3.0, 1.0),
                    intensity: Vec3::new(0.35, 0.35, 0.45),
                },
            ],
            background: Vec3::new(0.05, 0.07, 0.12),
            ambient: Vec3::new(0.08, 0.08, 0.08),
        }
    }

    /// A deterministic variation of the demo scene: sphere centers are
    /// jittered (±0.2 in x and z) by a [`pdc_core::Rng`] seeded with
    /// `seed`, so different seeds render different images while a fixed
    /// seed reproduces exactly. The scenario seam uses this for its
    /// seed-parameterized inputs.
    pub fn seeded(seed: u64) -> Scene {
        let mut rng = pdc_core::Rng::new(seed);
        let mut scene = Scene::demo();
        for s in &mut scene.spheres {
            s.center.x += rng.f64() * 0.4 - 0.2;
            s.center.z += rng.f64() * 0.4 - 0.2;
        }
        scene
    }
}

/// A pinhole camera.
#[derive(Debug, Clone, Copy)]
pub struct Camera {
    /// Eye position.
    pub origin: Vec3,
    /// Vertical field of view in degrees.
    pub fov_deg: f64,
}

impl Camera {
    /// The demo camera at the origin looking down -z.
    pub fn demo() -> Camera {
        Camera {
            origin: Vec3::new(0.0, 0.2, 1.5),
            fov_deg: 55.0,
        }
    }

    /// The primary ray through pixel `(px, py)` of a `w × h` image.
    pub fn primary_ray(&self, px: usize, py: usize, w: usize, h: usize) -> Ray {
        let aspect = w as f64 / h as f64;
        let half_h = (self.fov_deg.to_radians() / 2.0).tan();
        let half_w = half_h * aspect;
        // Pixel center in NDC.
        let u = ((px as f64 + 0.5) / w as f64 * 2.0 - 1.0) * half_w;
        let v = (1.0 - (py as f64 + 0.5) / h as f64 * 2.0) * half_h;
        Ray {
            origin: self.origin,
            dir: Vec3::new(u, v, -1.0).normalized(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ray_hits_centered_sphere() {
        let s = Sphere {
            center: Vec3::new(0.0, 0.0, -3.0),
            radius: 1.0,
            material: Material::matte(Vec3::ONE),
        };
        let ray = Ray {
            origin: Vec3::ZERO,
            dir: Vec3::new(0.0, 0.0, -1.0),
        };
        let h = hit_sphere(&s, &ray, f64::INFINITY).expect("hit");
        assert!((h.t - 2.0).abs() < 1e-12);
        assert_eq!(h.normal, Vec3::new(0.0, 0.0, 1.0));
    }

    #[test]
    fn ray_misses_off_axis_sphere() {
        let s = Sphere {
            center: Vec3::new(10.0, 0.0, -3.0),
            radius: 1.0,
            material: Material::matte(Vec3::ONE),
        };
        let ray = Ray {
            origin: Vec3::ZERO,
            dir: Vec3::new(0.0, 0.0, -1.0),
        };
        assert!(hit_sphere(&s, &ray, f64::INFINITY).is_none());
    }

    #[test]
    fn closest_hit_wins() {
        let scene = Scene::demo();
        let ray = Ray {
            origin: Vec3::new(0.0, 0.0, 1.5),
            dir: Vec3::new(0.0, 0.0, -1.0),
        };
        let h = scene.hit(&ray).expect("center sphere");
        // The red sphere front surface is at z = -2, so t = 3.5.
        assert!((h.t - 3.5).abs() < 1e-9);
    }

    #[test]
    fn plane_checker_alternates() {
        let p = CheckerPlane {
            height: 0.0,
            cell: 1.0,
            a: Material::matte(Vec3::ONE),
            b: Material::matte(Vec3::ZERO),
        };
        let down = |x: f64, z: f64| {
            let ray = Ray {
                origin: Vec3::new(x, 1.0, z),
                dir: Vec3::new(0.0, -1.0, 0.0),
            };
            hit_plane(&p, &ray, f64::INFINITY).unwrap().material.diffuse
        };
        assert_eq!(down(0.5, 0.5), Vec3::ONE);
        assert_eq!(down(1.5, 0.5), Vec3::ZERO);
        assert_eq!(down(1.5, 1.5), Vec3::ONE);
        assert_eq!(down(-0.5, 0.5), Vec3::ZERO, "negative cells alternate too");
    }

    #[test]
    fn shadow_detects_blocker() {
        let scene = Scene::demo();
        // A point directly below the big sphere, light directly above it.
        let point = Vec3::new(0.0, -1.0, -3.0);
        let light_above = Vec3::new(0.0, 5.0, -3.0);
        assert!(scene.in_shadow(point, light_above));
        // A far-away floor point with a clear line to the light.
        let clear = Vec3::new(4.0, -1.0, -1.0);
        assert!(!scene.in_shadow(clear, light_above));
    }

    #[test]
    fn camera_rays_are_unit_and_centered() {
        let cam = Camera::demo();
        let r = cam.primary_ray(50, 50, 100, 100);
        assert!((r.dir.length() - 1.0).abs() < 1e-12);
        // The center pixel looks essentially down -z.
        assert!(r.dir.z < -0.99);
    }
}
