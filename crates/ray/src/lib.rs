//! # pdc-ray — a mini ray tracer, three ways
//!
//! The paper's CS40 section proposes, as the integration capstone, "a
//! large multi-week project in which students develop a hybrid MPI/CUDA
//! ray tracer to run on GPU clusters". This crate is that project:
//! a small but real ray tracer (spheres, plane, Lambertian + specular
//! shading, hard shadows, mirror reflections) rendered by
//!
//! * [`render::render_sequential`] — the baseline;
//! * [`render::render_threaded`] — shared-memory row parallelism with a
//!   choice of loop schedule (ray tracing is the classic *irregular*
//!   workload where dynamic scheduling beats static);
//! * [`render::render_distributed`] — row bands over `pdc-mpi` ranks,
//!   gathered at rank 0 (the "cluster" dimension of the hybrid project);
//! * [`render::render_pool`] — rows as work-stealing pool tasks (the
//!   irregular-work load balancer);
//! * [`render::render_gpu`] — one simulated GPU thread per pixel on
//!   [`pdc_gpu`] (the "CUDA" dimension, with its cost model).
//!
//! All of them produce bit-identical images (tested), because every ray
//! is a pure function of the scene and its pixel — which also makes the
//! tracer an ideal [`scenario`] for cross-backend digest checks.
//!
//! * [`math`] — `Vec3` and rays.
//! * [`scene`] — geometry, materials, camera, and the demo scene.
//! * [`render`] — the renderers plus PPM output.
//! * [`scenario`] — the seam adapter ([`pdc_core::scenario`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod math;
pub mod render;
pub mod scenario;
pub mod scene;

pub use math::Vec3;
pub use render::{render_sequential, render_threaded, Image};
pub use scenario::RayScenario;
pub use scene::{Camera, Material, Scene, Sphere};
